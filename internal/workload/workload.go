// Package workload builds the paper's benchmark suite as trace generators:
// the eleven irregular GraphBIG workloads of Section 5.1 (BC, five BFS
// variants, two GC variants, KCORE, SSSP-TWC, PR) and six Rodinia-style
// regular workloads used by Figure 1 (CFD, DWT, GM, H3D, HS, LUD).
//
// Each workload replays its algorithm on the host (internal/graph) to learn
// per-round activity, lays its data structures out in a managed address
// space (internal/layout), and emits, for every warp of every kernel
// launch, the memory accesses the CUDA kernel would issue against that
// layout.
package workload

import (
	"fmt"

	"uvmsim/internal/graph"
	"uvmsim/internal/trace"
)

// Params sizes the generated workloads.
type Params struct {
	Vertices  int    // graph vertices
	AvgDegree int    // average directed degree
	Seed      uint64 // graph generator seed
	PageBytes uint64 // must match the simulated page size

	PRIterations int // PageRank power iterations
	KCoreK       int // k for k-core decomposition
	BCSources    int // betweenness-centrality source count

	ThreadsPerBlock int
	RegsPerThread   int // >16, which disables baseline VT (Section 4.1)

	// ComputeCycles models the arithmetic work between consecutive memory
	// operations of a thread (index math, comparisons, atomics retries).
	ComputeCycles int

	// RegularElems sizes the regular (Figure 1) workloads, in 4-byte
	// elements per thread block.
	RegularElems int
}

// Default returns parameters producing footprints of a few hundred 64KB
// pages — scaled-down versions of the paper's truncated GraphBIG inputs
// (DESIGN.md §4).
func Default() Params {
	return Params{
		Vertices:        1 << 15,
		AvgDegree:       8,
		Seed:            42,
		PageBytes:       64 << 10,
		PRIterations:    3,
		KCoreK:          3,
		BCSources:       2,
		ThreadsPerBlock: 1024,
		RegsPerThread:   32,
		ComputeCycles:   24,
		RegularElems:    1 << 16,
	}
}

// Irregular lists the GraphBIG workloads in the paper's figure order.
var Irregular = []string{
	"BC", "BFS-DWC", "BFS-TA", "BFS-TF", "BFS-TTC", "BFS-TWC",
	"GC-DTC", "GC-TTC", "KCORE", "SSSP-TWC", "PR",
}

// Regular lists the Figure 1 regular workloads.
var Regular = []string{"CFD", "DWT", "GM", "H3D", "HS", "LUD"}

// All lists every buildable workload, including the extension workloads
// (CC, TC, DC) that go beyond the paper's evaluation suite.
func All() []string {
	out := append([]string(nil), Irregular...)
	out = append(out, Regular...)
	return append(out, Extensions...)
}

// Build constructs the named workload.
func Build(name string, p Params) (*trace.Workload, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	switch name {
	case "BC":
		return buildBC(p), nil
	case "BFS-DWC":
		return buildBFSDWC(p), nil
	case "BFS-TA":
		return buildBFSTA(p), nil
	case "BFS-TF":
		return buildBFSTF(p), nil
	case "BFS-TTC":
		return buildBFSTTC(p), nil
	case "BFS-TWC":
		return buildBFSTWC(p), nil
	case "GC-DTC":
		return buildGCDTC(p), nil
	case "GC-TTC":
		return buildGCTTC(p), nil
	case "KCORE":
		return buildKCore(p), nil
	case "SSSP-TWC":
		return buildSSSPTWC(p), nil
	case "PR":
		return buildPR(p), nil
	case "CC":
		return buildCC(p), nil
	case "TC":
		return buildTC(p), nil
	case "DC":
		return buildDC(p), nil
	case "CFD", "DWT", "GM", "H3D", "HS", "LUD":
		return buildRegular(name, p), nil
	}
	return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, All())
}

// BuildCompiled builds the named workload and compiles it to the flat
// trace form (trace.Compiled) at the given warp size: the one-time
// capture step of the capture/replay split. The returned Compiled is
// immutable; share it freely across concurrent simulations and obtain
// replayable views with its Workload method.
func BuildCompiled(name string, p Params, warpSize int) (*trace.Compiled, error) {
	w, err := Build(name, p)
	if err != nil {
		return nil, err
	}
	return trace.Compile(w, warpSize)
}

func (p Params) validate() error {
	switch {
	case p.Vertices <= 0:
		return fmt.Errorf("workload: Vertices = %d", p.Vertices)
	case p.AvgDegree <= 0:
		return fmt.Errorf("workload: AvgDegree = %d", p.AvgDegree)
	case p.PageBytes == 0 || p.PageBytes&(p.PageBytes-1) != 0:
		return fmt.Errorf("workload: PageBytes = %d", p.PageBytes)
	case p.ThreadsPerBlock <= 0 || p.ThreadsPerBlock%32 != 0:
		return fmt.Errorf("workload: ThreadsPerBlock = %d", p.ThreadsPerBlock)
	case p.RegsPerThread <= 0:
		return fmt.Errorf("workload: RegsPerThread = %d", p.RegsPerThread)
	case p.ComputeCycles <= 0:
		return fmt.Errorf("workload: ComputeCycles = %d", p.ComputeCycles)
	case p.PRIterations <= 0:
		return fmt.Errorf("workload: PRIterations = %d", p.PRIterations)
	case p.KCoreK <= 0:
		return fmt.Errorf("workload: KCoreK = %d", p.KCoreK)
	case p.BCSources <= 0:
		return fmt.Errorf("workload: BCSources = %d", p.BCSources)
	case p.RegularElems <= 0:
		return fmt.Errorf("workload: RegularElems = %d", p.RegularElems)
	}
	return nil
}

// bfsSource picks the BFS root: the highest-degree vertex, which maximizes
// reachability on RMAT graphs.
func bfsSource(g *graph.CSR) uint32 {
	v, _ := g.MaxDegree()
	return v
}
