package workload

import (
	"strings"
	"testing"

	"uvmsim/internal/trace"
)

// smallParams keeps construction fast in tests.
func smallParams() Params {
	p := Default()
	p.Vertices = 2048
	p.AvgDegree = 6
	p.RegularElems = 1 << 13
	return p
}

func TestBuildAllWorkloads(t *testing.T) {
	p := smallParams()
	for _, name := range All() {
		w, err := Build(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name != name {
			t.Errorf("%s: workload named %q", name, w.Name)
		}
		if len(w.Kernels) == 0 {
			t.Errorf("%s: no kernels", name)
		}
		if w.FootprintPages() == 0 {
			t.Errorf("%s: zero footprint", name)
		}
		for _, k := range w.Kernels {
			if k.Blocks <= 0 || k.ThreadsPerBlock <= 0 {
				t.Errorf("%s/%s: bad grid %dx%d", name, k.Name, k.Blocks, k.ThreadsPerBlock)
			}
		}
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := Build("NOPE", smallParams()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBadParamsRejected(t *testing.T) {
	p := smallParams()
	p.ThreadsPerBlock = 100 // not a warp multiple
	if _, err := Build("PR", p); err == nil {
		t.Fatal("bad ThreadsPerBlock accepted")
	}
	p = smallParams()
	p.Vertices = 0
	if _, err := Build("PR", p); err == nil {
		t.Fatal("zero vertices accepted")
	}
}

// addressesInSpace drains every stream of every kernel and checks all
// addresses fall inside the workload's managed space.
func addressesInSpace(t *testing.T, w *trace.Workload) (totalAccesses int) {
	t.Helper()
	for _, k := range w.Kernels {
		for blk := 0; blk < k.Blocks; blk++ {
			for wp := 0; wp < k.WarpsPerBlock(32); wp++ {
				st := k.NewWarpStream(blk, wp)
				for {
					acc, ok := st.Next()
					if !ok {
						break
					}
					totalAccesses++
					for _, a := range acc.Addrs {
						if !w.Space.Contains(a) {
							t.Fatalf("%s/%s block %d warp %d: address %#x outside managed space",
								w.Name, k.Name, blk, wp, a)
						}
					}
					if len(acc.Addrs) > 32 {
						t.Fatalf("%s/%s: access with %d lanes", w.Name, k.Name, len(acc.Addrs))
					}
				}
			}
		}
	}
	return totalAccesses
}

func TestAllAddressesInsideSpace(t *testing.T) {
	p := smallParams()
	p.Vertices = 512
	p.RegularElems = 1 << 11
	for _, name := range All() {
		w, err := Build(name, p)
		if err != nil {
			t.Fatal(err)
		}
		if n := addressesInSpace(t, w); n == 0 {
			t.Errorf("%s: no accesses generated", name)
		}
	}
}

func TestStreamsArePure(t *testing.T) {
	// NewWarpStream must return identical streams each call (the simulator
	// and the working-set analyzer both create them).
	p := smallParams()
	p.Vertices = 512
	w, err := Build("BFS-TTC", p)
	if err != nil {
		t.Fatal(err)
	}
	k := w.Kernels[0]
	drain := func() []trace.Access {
		var out []trace.Access
		st := k.NewWarpStream(0, 0)
		for {
			a, ok := st.Next()
			if !ok {
				return out
			}
			out = append(out, a)
		}
	}
	a, b := drain(), drain()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Addrs) != len(b[i].Addrs) {
			t.Fatalf("access %d lane counts differ", i)
		}
		for j := range a[i].Addrs {
			if a[i].Addrs[j] != b[i].Addrs[j] {
				t.Fatalf("access %d lane %d differs", i, j)
			}
		}
	}
}

func TestIrregularSharesPagesAcrossBlocks(t *testing.T) {
	// The Figure 1 premise: irregular workloads share most pages across
	// blocks; regular workloads keep block working sets disjoint.
	p := smallParams()
	p.Vertices = 4096
	w, err := Build("BFS-TTC", p)
	if err != nil {
		t.Fatal(err)
	}
	// Pick the busiest kernel (level with most work).
	k := w.Kernels[1]
	if k.Blocks < 2 {
		t.Skip("kernel has a single block")
	}
	a := trace.PagesTouched(k, 0, 32, p.PageBytes)
	b := trace.PagesTouched(k, 1, 32, p.PageBytes)
	shared := 0
	for pg := range a {
		if _, ok := b[pg]; ok {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("irregular workload blocks share no pages")
	}
}

func TestRegularBlocksMostlyDisjoint(t *testing.T) {
	p := smallParams()
	for _, name := range Regular {
		w, err := Build(name, p)
		if err != nil {
			t.Fatal(err)
		}
		k := w.Kernels[0]
		a := trace.PagesTouched(k, 0, 32, p.PageBytes)
		b := trace.PagesTouched(k, 10, 32, p.PageBytes)
		shared := 0
		for pg := range a {
			if _, ok := b[pg]; ok {
				shared++
			}
		}
		if shared > len(a)/4 {
			t.Errorf("%s: blocks 0 and 10 share %d of %d pages; regular tiles should be mostly disjoint",
				name, shared, len(a))
		}
	}
}

func TestLockstepMergesLanes(t *testing.T) {
	lanes := [][]op{
		{{addr: 1}, {addr: 2}, {addr: 3}},
		{{addr: 10}},
		{{addr: 20}, {addr: 21, store: true}},
	}
	accs := lockstep(lanes, 5)
	if len(accs) != 3 {
		t.Fatalf("lockstep produced %d accesses, want 3", len(accs))
	}
	if len(accs[0].Addrs) != 3 || len(accs[1].Addrs) != 2 || len(accs[2].Addrs) != 1 {
		t.Fatalf("lane counts = %d,%d,%d", len(accs[0].Addrs), len(accs[1].Addrs), len(accs[2].Addrs))
	}
	if !accs[1].Store {
		t.Fatal("store flag lost in merge")
	}
	if accs[0].ComputeCycles != 5 {
		t.Fatal("compute cycles not propagated")
	}
}

func TestBFSVariantsDifferInTraffic(t *testing.T) {
	// The variants must not degenerate into the same trace: TA performs
	// extra atomic stores versus TTC; TF touches frontier arrays.
	p := smallParams()
	p.Vertices = 1024
	counts := map[string]int{}
	for _, name := range []string{"BFS-TTC", "BFS-TA", "BFS-TF"} {
		w, err := Build(name, p)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, k := range w.Kernels {
			for blk := 0; blk < k.Blocks; blk++ {
				for wp := 0; wp < k.WarpsPerBlock(32); wp++ {
					st := k.NewWarpStream(blk, wp)
					for {
						acc, ok := st.Next()
						if !ok {
							break
						}
						total += len(acc.Addrs)
					}
				}
			}
		}
		counts[name] = total
	}
	if counts["BFS-TA"] <= counts["BFS-TTC"] {
		t.Errorf("BFS-TA traffic %d <= BFS-TTC %d; atomics should add accesses",
			counts["BFS-TA"], counts["BFS-TTC"])
	}
	if counts["BFS-TF"] <= counts["BFS-TTC"] {
		t.Errorf("BFS-TF traffic %d <= BFS-TTC %d; frontier flags should add accesses",
			counts["BFS-TF"], counts["BFS-TTC"])
	}
}

func TestKernelNamesCarryRound(t *testing.T) {
	p := smallParams()
	p.Vertices = 512
	w, err := Build("KCORE", p)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range w.Kernels {
		if !strings.HasPrefix(k.Name, "kcore-R") {
			t.Fatalf("kernel %d named %q", i, k.Name)
		}
	}
}
