// Package uvmsim is a discrete-event simulator of GPU unified virtual
// memory (UVM) with batch-aware memory management, reproducing "Batch-Aware
// Unified Memory Management in GPUs for Irregular Workloads" (Kim et al.,
// ASPLOS 2020).
//
// The simulator models a 16-SM GPU with demand paging over PCIe: page
// faults stall warps, the UVM runtime processes faults in batches (the
// serialization the paper analyzes), pages migrate at PCIe bandwidth, and
// device memory evicts with aged LRU under oversubscription. On top of the
// baseline (state-of-the-art tree prefetching), the package implements the
// paper's two mechanisms — thread oversubscription (TO) and unobtrusive
// eviction (UE) — plus the ETC framework and PCIe compression as
// comparison points.
//
// Quick start:
//
//	w, _ := uvmsim.BuildWorkload("BFS-TTC", uvmsim.DefaultWorkloadParams())
//	cfg := uvmsim.DefaultConfig()
//	cfg.Policy = uvmsim.TOUE
//	res, err := uvmsim.Simulate(cfg, w)
//	fmt.Println(res.Cycles, res.NumBatches())
package uvmsim

import (
	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/metrics"
	"uvmsim/internal/trace"
	"uvmsim/internal/workload"
)

// Config is the simulated-system configuration (Table 1 plus policy
// knobs).
type Config = config.Config

// Policy selects the memory-management mechanism under test.
type Policy = config.Policy

// Policies, in the order Figure 11 reports them.
const (
	Baseline           = config.Baseline
	BaselineCompressed = config.BaselineCompressed
	TO                 = config.TO
	UE                 = config.UE
	TOUE               = config.TOUE
	ETC                = config.ETC
	IdealEviction      = config.IdealEviction
)

// Workload is a benchmark: an address-space layout plus kernel launches.
type Workload = trace.Workload

// WorkloadParams sizes the generated benchmarks.
type WorkloadParams = workload.Params

// Result carries a run's measurements (batches, migrations, evictions,
// premature evictions, context switches, cycles, cache/TLB counters).
type Result = metrics.Stats

// Machine is an assembled simulator instance, exposed for callers that
// need component access (page table, cluster, runtime) beyond Simulate.
type Machine = core.Machine

// DefaultConfig returns the paper's Table 1 configuration with the
// Baseline policy and 50% memory oversubscription.
func DefaultConfig() Config { return config.Default() }

// DefaultWorkloadParams returns workload sizes producing footprints of a
// few hundred 64 KB pages (scaled-down GraphBIG inputs; see DESIGN.md §4).
func DefaultWorkloadParams() WorkloadParams { return workload.Default() }

// IrregularWorkloads lists the eleven GraphBIG workloads of the paper's
// evaluation, in figure order.
func IrregularWorkloads() []string { return append([]string(nil), workload.Irregular...) }

// RegularWorkloads lists the six Figure 1 regular workloads.
func RegularWorkloads() []string { return append([]string(nil), workload.Regular...) }

// ExtensionWorkloads lists the extra irregular workloads (CC, TC, DC)
// beyond the paper's evaluation suite.
func ExtensionWorkloads() []string { return append([]string(nil), workload.Extensions...) }

// AllWorkloads lists every buildable workload.
func AllWorkloads() []string { return workload.All() }

// BuildWorkload constructs a named workload.
func BuildWorkload(name string, p WorkloadParams) (*Workload, error) {
	return workload.Build(name, p)
}

// Simulate runs the workload to completion under cfg and returns the
// measurements.
func Simulate(cfg Config, w *Workload) (*Result, error) {
	return core.Run(cfg, w)
}

// NewMachine assembles a simulator without running it, for callers that
// want to inspect or drive components directly.
func NewMachine(cfg Config, w *Workload) (*Machine, error) {
	return core.NewMachine(cfg, w)
}
