package uvmsim_test

import (
	"testing"

	"uvmsim"
)

func TestPublicAPISimulate(t *testing.T) {
	p := uvmsim.DefaultWorkloadParams()
	p.Vertices = 1 << 17
	p.AvgDegree = 8
	w, err := uvmsim.BuildWorkload("BFS-TTC", p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uvmsim.DefaultConfig()
	cfg.UVM.OversubscriptionRatio = 0.6
	res, err := uvmsim.Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.NumBatches() == 0 {
		t.Fatalf("empty result: cycles=%d batches=%d", res.Cycles, res.NumBatches())
	}
}

func TestWorkloadCatalogs(t *testing.T) {
	irr := uvmsim.IrregularWorkloads()
	if len(irr) != 11 {
		t.Fatalf("IrregularWorkloads = %d entries, want 11", len(irr))
	}
	reg := uvmsim.RegularWorkloads()
	if len(reg) != 6 {
		t.Fatalf("RegularWorkloads = %d entries, want 6", len(reg))
	}
	if len(uvmsim.ExtensionWorkloads()) != 3 {
		t.Fatalf("ExtensionWorkloads = %d entries, want 3", len(uvmsim.ExtensionWorkloads()))
	}
	if len(uvmsim.AllWorkloads()) != 20 {
		t.Fatalf("AllWorkloads = %d", len(uvmsim.AllWorkloads()))
	}
	// The catalogs are copies: mutating them must not corrupt the package.
	irr[0] = "corrupted"
	if uvmsim.IrregularWorkloads()[0] == "corrupted" {
		t.Fatal("IrregularWorkloads exposed internal state")
	}
}

func TestBuildWorkloadRejectsUnknown(t *testing.T) {
	if _, err := uvmsim.BuildWorkload("NOT-A-WORKLOAD", uvmsim.DefaultWorkloadParams()); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestNewMachineExposesComponents(t *testing.T) {
	p := uvmsim.DefaultWorkloadParams()
	p.Vertices = 1 << 12
	w, err := uvmsim.BuildWorkload("PR", p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := uvmsim.NewMachine(uvmsim.DefaultConfig(), w)
	if err != nil {
		t.Fatal(err)
	}
	if m.PT == nil || m.Cluster == nil || m.RT == nil {
		t.Fatal("machine components not exposed")
	}
}

func TestPolicyConstantsDistinct(t *testing.T) {
	seen := map[uvmsim.Policy]bool{}
	for _, p := range []uvmsim.Policy{
		uvmsim.Baseline, uvmsim.BaselineCompressed, uvmsim.TO,
		uvmsim.UE, uvmsim.TOUE, uvmsim.ETC, uvmsim.IdealEviction,
	} {
		if seen[p] {
			t.Fatalf("duplicate policy value %v", p)
		}
		seen[p] = true
	}
}
